// E3 — LE-list lengths (Lemma 7.6).
//
// Claim: under a uniformly random vertex order every LE list has length
// O(log n) w.h.p. (expected length ≈ H_n ≈ ln n).  We sweep families and
// sizes and report mean/max list length against ln n, plus the runtime of
// the sequential baseline (Cohen/Mendel–Schwob style).

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/le_lists.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E3: LE-list length",
               "Lemma 7.6 — |LE list| in O(log n) w.h.p.; expected ~ ln n; "
               "plus the frontier-driven MBF iteration vs the sequential "
               "baseline");
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{256, 1024}
                 : std::vector<Vertex>{256, 1024, 4096, 16384};
  Rng rng(cli.seed());
  Table t({"family", "n", "ln(n)", "avg |list|", "p99 |list|", "max |list|",
           "seq time [ms]", "iter time [ms]", "iter relax", "iter == seq"});
  for (const auto* family : {"gnm", "grid", "path", "geometric"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      const auto order = VertexOrder::random(g.num_vertices(), rng);
      const Timer timer;
      const auto le = le_lists_sequential(g, order);
      const double ms = timer.millis();
      // The same lists via the frontier-driven engine (Khan-style
      // fixpoint iteration, Section 8.1) with its relaxation counter.
      const WorkDepthScope scope;
      const Timer it_timer;
      const auto le_it = le_lists_iteration(g, order);
      const double it_ms = it_timer.millis();
      std::vector<double> lens;
      lens.reserve(le.lists.size());
      for (const auto& l : le.lists) {
        lens.push_back(static_cast<double>(l.size()));
      }
      const auto s = summarize(std::move(lens));
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 cell(std::log(static_cast<double>(g.num_vertices()))),
                 cell(s.mean), cell(s.p99), cell(s.max), cell(ms),
                 cell(it_ms),
                 cell(static_cast<std::size_t>(scope.relaxations_delta())),
                 cell(le_it.lists == le.lists ? "yes" : "NO")});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
