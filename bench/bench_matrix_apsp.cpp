// E16 — the classical algebraic APSP baseline (Section 1.1).
//
// Claim shape: squaring the min-plus adjacency matrix reaches the distance
// fixpoint in ⌈log₂ SPD(G)⌉ rounds (polylog depth) at Θ(n³ log n) work —
// work-competitive with n Dijkstras only on dense graphs, and dominated by
// the paper's oracle machinery on sparse ones.

#include "bench/bench_common.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/metric/matrix_apsp.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E16: algebraic APSP baseline",
               "Section 1.1 — A <- A^2 fixpoint: ceil(log2 SPD) rounds, "
               "Theta(n^3 log n) work");
  Rng rng(cli.seed());
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{64, 128}
                                        : std::vector<Vertex>{64, 128, 256};
  Table t({"family", "n", "m", "squarings", "matrix time [ms]",
           "n Dijkstra time [ms]", "n^3 ops", "n m log n ops"});
  for (const auto* family : {"path", "gnm", "cliquechain"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      const auto mr = matrix_apsp(g);
      const Timer timer;
      const auto ref = exact_apsp(g);
      const double dijkstra_ms = timer.millis();
      (void)ref;
      const double nn = static_cast<double>(g.num_vertices());
      const double mm = static_cast<double>(g.num_edges());
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 cell(g.num_edges()), cell(std::size_t{mr.squarings}),
                 cell(mr.seconds * 1e3), cell(dijkstra_ms),
                 cell(nn * nn * nn), cell(nn * mm * std::log2(nn))});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
