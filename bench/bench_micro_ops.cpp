// E13 — micro-benchmarks (google-benchmark) of the semimodule primitives:
// aggregation merges (Lemma 2.3), the LE filter (Lemma 7.7), the
// k-smallest filter, and path-set products.

#include <benchmark/benchmark.h>

#include "src/algebra/distance_map.hpp"
#include "src/algebra/path_set.hpp"
#include "src/util/rng.hpp"

namespace pmte {
namespace {

DistanceMap random_map(Rng& rng, Vertex key_range, std::size_t entries) {
  std::vector<DistEntry> es;
  es.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    es.push_back(DistEntry{static_cast<Vertex>(rng.below(key_range)),
                           rng.uniform(0.0, 1000.0)});
  }
  return DistanceMap::from_entries(std::move(es));
}

void BM_MergeMin(benchmark::State& state) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto a = random_map(rng, 1 << 20, size);
  const auto b = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = a;
    x.merge_min(b, 1.5);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * size));
}
BENCHMARK(BM_MergeMin)->Arg(16)->Arg(256)->Arg(4096);

void BM_LeFilter(benchmark::State& state) {
  Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto m = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = m;
    x.keep_least_elements();
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_LeFilter)->Arg(16)->Arg(256)->Arg(4096);

void BM_KeepKSmallest(benchmark::State& state) {
  Rng rng(3);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto m = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = m;
    x.keep_k_smallest(16);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_KeepKSmallest)->Arg(256)->Arg(4096);

void BM_PathSetTimes(benchmark::State& state) {
  Rng rng(4);
  PathSet a, b;
  for (Vertex i = 0; i < 8; ++i) {
    a = a.plus(PathSet::single(VertexPath{{0, static_cast<Vertex>(i + 1)}},
                               rng.uniform(0.0, 10.0)));
    b = b.plus(PathSet::single(
        VertexPath{{static_cast<Vertex>(i + 1), static_cast<Vertex>(i + 9)}},
        rng.uniform(0.0, 10.0)));
  }
  for (auto _ : state) {
    auto c = a.times(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PathSetTimes);

}  // namespace
}  // namespace pmte

BENCHMARK_MAIN();
