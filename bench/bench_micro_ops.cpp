// E13 — micro-benchmarks of the semimodule primitives, plus the
// deterministic counter harness behind the CI bench gate.
//
// Two modes:
//   * `--counters` prints the WorkDepth counters (relaxations, edges
//     touched, work, depth, iterations) of fixed-seed MBF engine runs as
//     JSON.  The counts are logical-operation counts — identical across
//     thread counts, compilers, and machines — so scripts/
//     check_bench_regression.py can hard-fail CI on any >5% regression
//     against the committed BENCH_micro_ops.json baseline.
//   * default: google-benchmark timings of aggregation merges (Lemma 2.3),
//     the LE filter (Lemma 7.7), the k-smallest filter, and path-set
//     products.  Compiled only when the library is available
//     (PMTE_HAVE_GOOGLE_BENCHMARK); without it the default mode emits `{}`
//     so scripts/run_benches.sh still gets valid JSON.

#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "src/algebra/distance_map.hpp"
#include "src/algebra/path_set.hpp"
#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/mbf/algebras.hpp"
#include "src/mbf/engine.hpp"
#include "src/util/rng.hpp"

#ifdef PMTE_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

namespace pmte {
namespace {

// ---------------------------------------------------------------------------
// Deterministic counter scenarios (the CI gate; shared emitter in
// bench_common.hpp).

template <MbfAlgebra Algebra>
bench::CounterScenario run_scenario(const std::string& name, const Graph& g,
                                    const Algebra& alg,
                                    std::vector<typename Algebra::State> x0,
                                    MbfMode mode) {
  WorkDepth::reset();
  const WorkDepthScope scope;
  const auto run = mbf_run(g, alg, std::move(x0), g.num_vertices(), 1.0, mode);
  return bench::CounterScenario{name,
                                {{"relaxations", scope.relaxations_delta()},
                                 {"edges_touched", scope.edges_touched_delta()},
                                 {"work", scope.work_delta()},
                                 {"depth", scope.depth_delta()},
                                 {"iterations", run.iterations}}};
}

void emit_counters(std::ostream& os) {
  std::vector<bench::CounterScenario> reports;

  // Scalar SSSP on a long path — SPD = n−1, the dense engine's worst case
  // and the frontier's best.
  {
    const Vertex n = 2048;
    const auto g = make_path(n);
    ScalarDistanceAlgebra alg;
    std::vector<Weight> x0(n, inf_weight());
    x0[0] = 0.0;
    reports.push_back(
        run_scenario("sssp_path_dense", g, alg, x0, MbfMode::kDense));
    reports.push_back(
        run_scenario("sssp_path_frontier", g, alg, x0, MbfMode::kAuto));
  }

  // Scalar SSSP on a weighted grid — a 2D wavefront.
  {
    const auto g = make_grid(48, 48, {1.0, 2.0}, Rng(42));
    ScalarDistanceAlgebra alg;
    std::vector<Weight> x0(g.num_vertices(), inf_weight());
    x0[0] = 0.0;
    reports.push_back(
        run_scenario("sssp_grid_dense", g, alg, x0, MbfMode::kDense));
    reports.push_back(
        run_scenario("sssp_grid_frontier", g, alg, x0, MbfMode::kAuto));
  }

  // LE lists on a low-diameter ER graph — the frontier stays broad for a
  // few rounds, exercising the dense-fallback threshold.
  {
    Rng rng(7);
    const auto g = make_gnm(512, 1536, {1.0, 4.0}, rng);
    const auto order = VertexOrder::random(g.num_vertices(), rng);
    const LeListAlgebra alg;
    reports.push_back(run_scenario("le_lists_gnm_frontier", g, alg,
                                   le_initial_state(order), MbfMode::kAuto));
  }

  // Source detection on a star — one round of fan-out, then collapse.
  {
    Rng rng(9);
    const auto g = make_star(2048, {1.0, 5.0}, rng);
    SourceDetectionAlgebra alg{.k = 4, .max_dist = inf_weight()};
    std::vector<DistanceMap> x0(g.num_vertices());
    for (Vertex s : {0U, 17U, 511U, 1999U}) {
      x0[s] = DistanceMap::singleton(s, 0.0);
    }
    reports.push_back(run_scenario("source_detection_star_frontier", g, alg,
                                   std::move(x0), MbfMode::kAuto));
  }

  bench::emit_counters(os, reports);
}

// ---------------------------------------------------------------------------
// google-benchmark timings.

#ifdef PMTE_HAVE_GOOGLE_BENCHMARK

DistanceMap random_map(Rng& rng, Vertex key_range, std::size_t entries) {
  std::vector<DistEntry> es;
  es.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    es.push_back(DistEntry{static_cast<Vertex>(rng.below(key_range)),
                           rng.uniform(0.0, 1000.0)});
  }
  return DistanceMap::from_entries(std::move(es));
}

void BM_MergeMin(benchmark::State& state) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto a = random_map(rng, 1 << 20, size);
  const auto b = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = a;
    x.merge_min(b, 1.5);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * size));
}
BENCHMARK(BM_MergeMin)->Arg(16)->Arg(256)->Arg(4096);

void BM_LeFilter(benchmark::State& state) {
  Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto m = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = m;
    x.keep_least_elements();
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_LeFilter)->Arg(16)->Arg(256)->Arg(4096);

void BM_KeepKSmallest(benchmark::State& state) {
  Rng rng(3);
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto m = random_map(rng, 1 << 20, size);
  for (auto _ : state) {
    auto x = m;
    x.keep_k_smallest(16);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_KeepKSmallest)->Arg(256)->Arg(4096);

void BM_PathSetTimes(benchmark::State& state) {
  Rng rng(4);
  PathSet a, b;
  for (Vertex i = 0; i < 8; ++i) {
    a = a.plus(PathSet::single(VertexPath{{0, static_cast<Vertex>(i + 1)}},
                               rng.uniform(0.0, 10.0)));
    b = b.plus(PathSet::single(
        VertexPath{{static_cast<Vertex>(i + 1), static_cast<Vertex>(i + 9)}},
        rng.uniform(0.0, 10.0)));
  }
  for (auto _ : state) {
    auto c = a.times(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PathSetTimes);

void BM_MbfFrontierStep(benchmark::State& state) {
  // One fixpoint run per iteration: allocation-free steady state via
  // engine reset, dominated by the frontier machinery itself.
  const auto g = make_grid(32, 32, {1.0, 2.0}, Rng(5));
  ScalarDistanceAlgebra alg;
  MbfEngine<ScalarDistanceAlgebra> engine(g, alg);
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  x0[0] = 0.0;
  for (auto _ : state) {
    engine.reset(x0);
    while (engine.step()) {
    }
    benchmark::DoNotOptimize(engine.states().data());
  }
}
BENCHMARK(BM_MbfFrontierStep);

#endif  // PMTE_HAVE_GOOGLE_BENCHMARK

}  // namespace
}  // namespace pmte

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::emit_counters(std::cout);
    return 0;
  }
#ifdef PMTE_HAVE_GOOGLE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  // Keep run_benches.sh's JSON assembly happy without google-benchmark.
  std::cerr << "bench_micro_ops: built without google-benchmark; only "
               "--counters is available\n";
  std::cout << "{}\n";
  return 0;
#endif
}
