// E-serve — the serving layer: FRT-ensemble build cost and batched O(1)
// query throughput (src/serve/).
//
// Claims carried: FrtIndex::distance is O(1) (two sparse-table probes per
// query, counted exactly), ensembles amortise one hop set across k trees,
// and batch serving is embarrassingly parallel with bit-identical outputs
// at any thread count.
//
// `--counters` emits deterministic WorkDepth / serving counters for the CI
// bench gate (the fourth gated baseline, BENCH_serve.json): ensemble build
// work on fixed graphs plus per-workload query counters (queries, per-tree
// lookups, LCA probes).  result_hash32 additionally pins the served
// distances bit-for-bit (ungated, but any drift shows in the JSON diff).


#include <cstdio>
#include <fstream>

#include "bench/bench_common.hpp"
#include "src/obs/obs.hpp"
#include "src/parallel/counters.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/stretch_report.hpp"
#include "src/serve/workloads.hpp"

namespace pmte::bench {
namespace {

CounterScenario build_scenario(const std::string& name, const Graph& g,
                               std::uint64_t seed, std::size_t trees,
                               serve::EnsemblePipeline pipeline,
                               serve::FrtEnsemble* keep = nullptr) {
  WorkDepth::reset();
  serve::EnsembleOptions opts;
  opts.trees = trees;
  opts.pipeline = pipeline;
  auto e = serve::FrtEnsemble::build(g, seed, opts);
  const auto& st = e.build_stats();
  CounterScenario s{name,
                    {{"relaxations", st.relaxations},
                     {"edges_touched", st.edges_touched},
                     {"work", st.work},
                     {"iterations", st.iterations},
                     {"index_nodes", st.index_nodes},
                     {"trees", trees}}};
  if (keep) *keep = std::move(e);
  return s;
}

#if PMTE_OBS
/// Informational latency keys (warn-only in the CI gate, see
/// scripts/check_bench_regression.py): replay the workload in 16
/// sub-batches and report log2-coarse percentiles of the per-batch wall
/// time.  A *separate* replay after the gated run — the gated counters
/// above come from the original unchunked batch and are untouched.
void add_latency_keys(CounterScenario& s, const serve::FrtEnsemble& e,
                      const std::vector<std::pair<Vertex, Vertex>>& workload,
                      serve::AggregatePolicy policy) {
  obs::Histogram lat;
  std::vector<Weight> scratch;
  constexpr std::size_t kChunks = 16;
  for (std::size_t c = 0; c < kChunks; ++c) {
    const std::size_t lo = workload.size() * c / kChunks;
    const std::size_t hi = workload.size() * (c + 1) / kChunks;
    const std::vector<std::pair<Vertex, Vertex>> chunk(
        workload.begin() + static_cast<std::ptrdiff_t>(lo),
        workload.begin() + static_cast<std::ptrdiff_t>(hi));
    const Timer t;
    (void)e.query_batch(chunk, policy, scratch);
    lat.record(static_cast<std::uint64_t>(t.seconds() * 1e9));
  }
  s.metrics.emplace_back("batch_ns_p50", lat.percentile(0.50));
  s.metrics.emplace_back("batch_ns_p95", lat.percentile(0.95));
  s.metrics.emplace_back("batch_ns_p99", lat.percentile(0.99));
}
#endif  // PMTE_OBS

CounterScenario query_scenario(const std::string& name,
                               const serve::FrtEnsemble& e, const Graph& g,
                               serve::WorkloadKind kind,
                               serve::AggregatePolicy policy,
                               std::size_t pairs, std::uint64_t seed) {
  Rng rng(seed);
  serve::WorkloadOptions wopts;
  wopts.pairs = pairs;
  const auto workload = serve::make_workload(g, kind, wopts, rng);
  std::vector<Weight> out;
  const auto st = e.query_batch(workload, policy, out);
  CounterScenario s{name,
                    {{"queries", st.pairs},
                     {"tree_lookups", st.tree_lookups},
                     {"lca_probes", st.lca_probes},
                     {"result_hash32", result_hash32(out)}}};
  PMTE_OBS_ONLY(add_latency_keys(s, e, workload, policy));
  return s;
}

CounterScenario cached_query_scenario(const std::string& name,
                                      const serve::FrtEnsemble& e,
                                      const Graph& g,
                                      serve::WorkloadKind kind,
                                      serve::AggregatePolicy policy,
                                      std::size_t pairs, std::uint64_t seed,
                                      std::size_t capacity) {
  Rng rng(seed);
  serve::WorkloadOptions wopts;
  wopts.pairs = pairs;
  const auto workload = serve::make_workload(g, kind, wopts, rng);
  serve::HotPairCache cache(capacity);
  std::vector<Weight> out;
  const auto st = e.query_batch(workload, policy, out, &cache);
  // result_hash32 must equal the uncached scenario's hash for the same
  // workload — the cache changes the lookup counts, never the doubles.
  // cache_hits is emitted ungated (more hits = better); cache_misses and
  // its admission/conflict split are gated like the lookup counters
  // (growth = cache effectiveness lost; conflicts growing alone = the hot
  // set stopped fitting its slots).
  return CounterScenario{name,
                         {{"queries", st.pairs},
                          {"tree_lookups", st.tree_lookups},
                          {"lca_probes", st.lca_probes},
                          {"cache_hits", st.cache_hits},
                          {"cache_misses", st.cache_misses},
                          {"cache_admissions", st.cache_admissions},
                          {"cache_conflicts", st.cache_conflicts},
                          {"result_hash32", result_hash32(out)}}};
}

/// The load-path contract as counter scenarios: persist `e` once (format
/// v3), load it back by stream copy and by mmap, and replay `pairs`
/// uniform queries on each.  Both rows must reproduce the live ensemble's
/// result_hash32; the mapped row's bulk_bytes_copied baseline is 0, so
/// the gate fails on the first copied payload byte.
std::vector<CounterScenario> load_scenarios(const serve::FrtEnsemble& e,
                                            const Graph& g,
                                            std::size_t pairs,
                                            std::uint64_t seed) {
  const std::string path = "bench_serve_load.tmp";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    e.save(out);
  }
  const auto replay_hash = [&](const serve::FrtEnsemble& loaded) {
    Rng rng(seed);
    serve::WorkloadOptions wopts;
    wopts.pairs = pairs;
    const auto workload =
        serve::make_workload(g, serve::WorkloadKind::uniform, wopts, rng);
    std::vector<Weight> out;
    (void)loaded.query_batch(workload, serve::AggregatePolicy::min, out);
    return result_hash32(out);
  };

  std::vector<CounterScenario> rows;
  {
    std::ifstream in(path, std::ios::binary);
    serve::reset_load_path_counters();
    const auto copied = serve::FrtEnsemble::load(in);
    const auto lc = serve::load_path_counters();
    rows.push_back(CounterScenario{
        "serve_load_copied",
        {{"sections_copied", lc.sections_copied},
         {"bulk_bytes_copied", lc.bulk_bytes_copied},
         {"result_hash32", replay_hash(copied)}}});
  }
  {
    serve::reset_load_path_counters();
    const auto mapped = serve::FrtEnsemble::load_mapped(path);
    const auto lc = serve::load_path_counters();
    rows.push_back(CounterScenario{
        "serve_load_mapped",
        {{"sections_mapped", lc.sections_mapped},
         {"bulk_bytes_copied", lc.bulk_bytes_copied},
         {"result_hash32", replay_hash(mapped)}}});
  }
  std::remove(path.c_str());
  return rows;
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  Rng grng(42);
  const auto gnm = make_gnm(512, 1536, {1.0, 4.0}, grng);
  serve::FrtEnsemble served;
  scenarios.push_back(build_scenario("serve_build_oracle_gnm_512", gnm, 3001,
                                     4, serve::EnsemblePipeline::oracle,
                                     &served));
  scenarios.push_back(build_scenario("serve_build_direct_gnm_512", gnm, 3001,
                                     4, serve::EnsemblePipeline::direct));
  scenarios.push_back(build_scenario("serve_build_oracle_path_1024",
                                     make_path(1024), 3002, 2,
                                     serve::EnsemblePipeline::oracle));
  scenarios.push_back(query_scenario("serve_query_uniform_min", served, gnm,
                                     serve::WorkloadKind::uniform,
                                     serve::AggregatePolicy::min, 200000,
                                     3003));
  scenarios.push_back(query_scenario("serve_query_zipf_median", served, gnm,
                                     serve::WorkloadKind::zipf,
                                     serve::AggregatePolicy::median, 200000,
                                     3004));
  scenarios.push_back(query_scenario("serve_query_bfs_local_min", served,
                                     gnm, serve::WorkloadKind::bfs_local,
                                     serve::AggregatePolicy::min, 200000,
                                     3005));
  // Same Zipf workload/seed as serve_query_zipf_median, with the hot-pair
  // cache attached: result_hash32 must match it exactly, tree_lookups /
  // lca_probes drop to the distinct-pair count.
  scenarios.push_back(cached_query_scenario(
      "serve_query_zipf_median_cached", served, gnm,
      serve::WorkloadKind::zipf, serve::AggregatePolicy::median, 200000,
      3004, /*capacity=*/1 << 15));
  // Load-path rows: the stream copy pins its byte volume, the mmap row
  // gates bulk_bytes_copied at 0, and both must reproduce
  // serve_query_uniform_min's result_hash32 (same workload seed).
  for (auto& s : load_scenarios(served, gnm, 200000, 3003)) {
    scenarios.push_back(std::move(s));
  }
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header(
      "E-serve: ensemble serving throughput",
      "O(1) LCA-based tree-distance queries; k-tree ensembles cut the "
      "served stretch (Blelloch-Gu-Sun style) at k flat lookups per query");
  const Vertex n = quick(cli) ? 1024 : 4096;
  const std::size_t queries = quick(cli) ? 100000 : 1000000;
  Rng rng(cli.seed());

  Table t({"family", "n", "trees", "build [ms]", "workload", "policy",
           "queries", "Mq/s", "ns/query"});
  for (const auto* family : {"gnm", "grid", "geometric"}) {
    auto inst = make_instance(family, n, rng());
    serve::EnsembleOptions opts;
    opts.trees = 8;
    opts.pipeline = serve::EnsemblePipeline::direct;
    const auto e = serve::FrtEnsemble::build(inst.graph, rng(), opts);
    const double build_ms = e.build_stats().seconds * 1e3;
    for (const auto kind :
         {serve::WorkloadKind::uniform, serve::WorkloadKind::bfs_local,
          serve::WorkloadKind::zipf}) {
      serve::WorkloadOptions wopts;
      wopts.pairs = queries;
      Rng wrng(rng());
      const auto pairs = serve::make_workload(inst.graph, kind, wopts, wrng);
      for (const auto policy :
           {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
        std::vector<Weight> out;
        Timer timer;
        (void)e.query_batch(pairs, policy, out);
        const double s = timer.seconds();
        t.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}),
                   cell(e.num_trees()), cell(build_ms),
                   serve::workload_name(kind), serve::policy_name(policy),
                   cell(pairs.size()),
                   cell(static_cast<double>(pairs.size()) / s / 1e6),
                   cell(s * 1e9 / static_cast<double>(pairs.size()))});
      }
      if (kind == serve::WorkloadKind::zipf) {
        // Zipf again with the hot-pair cache (warmed by one pre-pass so
        // the row shows steady-state hit-path throughput).
        serve::HotPairCache cache(1 << 16);
        std::vector<Weight> out;
        (void)e.query_batch(pairs, serve::AggregatePolicy::min, out, &cache);
        Timer timer;
        (void)e.query_batch(pairs, serve::AggregatePolicy::min, out, &cache);
        const double s = timer.seconds();
        t.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}),
                   cell(e.num_trees()), cell(build_ms), "zipf+cache", "min",
                   cell(pairs.size()),
                   cell(static_cast<double>(pairs.size()) / s / 1e6),
                   cell(s * 1e9 / static_cast<double>(pairs.size()))});
      }
    }
  }
  t.print();

  // Served quality, measured exactly (n Dijkstras + all-pairs queries —
  // corpus-size graphs): the Kao–Lee–Wagner distance-weighted average
  // stretch Σ served/Σ exact, plus mean/max/min of served/exact.  min ≥ 1
  // certifies dominance of the served values.
  std::cout << "\nExact served stretch (distance-weighted, vs brute-force "
               "Dijkstra):\n\n";
  const Vertex sn = quick(cli) ? 256 : 512;
  Table st({"family", "n", "trees", "policy", "pairs", "weighted",
            "mean", "max", "min"});
  for (const auto* family : {"gnm", "grid", "geometric"}) {
    auto inst = make_instance(family, sn, rng());
    serve::EnsembleOptions opts;
    opts.trees = 8;
    opts.pipeline = serve::EnsemblePipeline::direct;
    const auto e = serve::FrtEnsemble::build(inst.graph, rng(), opts);
    for (const auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      const auto q =
          serve::measure_stretch_quality(inst.graph, e, policy);
      st.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}),
                  cell(e.num_trees()), serve::policy_name(policy),
                  cell(q.pairs), cell(q.weighted_stretch),
                  cell(q.mean_stretch), cell(q.max_stretch),
                  cell(q.min_stretch)});
    }
  }
  st.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
