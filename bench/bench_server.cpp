// E-server — the many-tenant serving engine: interleaved tenant streams
// through the EnsembleRegistry / TenantRouter / epoch hot-swap pipeline
// (src/serve/server.hpp).
//
// Claims carried: routing is a serial classification pass (shard contents
// are a pure function of the query stream), shard execution parallelises
// across tenants with bit-identical per-stream outputs at any thread
// count, and an epoch hot-swap staged at a batch boundary equals a serial
// replay of the tenant's stream split at the swap point.
//
// `--counters` emits the per-tenant deterministic ledger for the CI bench
// gate (the eighth gated baseline, BENCH_server.json): the canonical
// four-tenant scenario — interleaved zipf+uniform streams, min and median
// policies, one hot-pair cache per stream, tenant 0 hot-swapped to a
// second ensemble mid-stream — and each tenant's cumulative queries,
// per-tree lookups, LCA probes, and cache misses (gated), plus cache hits,
// epoch, and result_hash32 (ungated; the hash pins every served double of
// the stream bit-for-bit).

#include "bench/bench_common.hpp"
#include "src/obs/obs.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/server.hpp"
#include "src/serve/workloads.hpp"

namespace pmte::bench {
namespace {

serve::EnsembleOptions ensemble_options(std::size_t trees) {
  serve::EnsembleOptions opts;
  opts.trees = trees;
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

/// The canonical tenant mix (matches serve_queries --tenants): even
/// tenants replay zipf, odd tenants uniform; policies alternate in pairs.
std::vector<serve::TenantStreamSpec> tenant_specs(std::size_t tenants,
                                                  std::size_t per_tenant) {
  std::vector<serve::TenantStreamSpec> specs(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    specs[t].kind = (t % 2 == 0) ? serve::WorkloadKind::zipf
                                 : serve::WorkloadKind::uniform;
    specs[t].opts.pairs = per_tenant;
    specs[t].opts.zipf_s = 1.2;
  }
  return specs;
}

serve::AggregatePolicy tenant_policy(std::size_t t) {
  return ((t / 2) % 2 == 0) ? serve::AggregatePolicy::min
                            : serve::AggregatePolicy::median;
}

void run_counters() {
  // Fixed instance: the bench_serve graph family at the same size, two
  // ensembles differing only in master seed (the swap source and target).
  Rng grng(42);
  const auto g = make_gnm(512, 1536, {1.0, 4.0}, grng);
  constexpr std::size_t kTenants = 4, kBatches = 8, kSwapAt = 4;
  constexpr std::size_t kPerTenant = 50000;

  serve::Server server;
  const auto fp_a = server.load(serve::FrtEnsemble::build(
      g, 4001, ensemble_options(4)));
  const auto fp_b = server.load(serve::FrtEnsemble::build(
      g, 4002, ensemble_options(4)));
  for (std::size_t t = 0; t < kTenants; ++t) {
    serve::TenantConfig cfg;
    cfg.ensemble = fp_a;
    cfg.policy = tenant_policy(t);
    cfg.cache_capacity = 1 << 12;
    server.add_tenant(cfg);
  }

  const auto specs = tenant_specs(kTenants, kPerTenant);
  const auto stream = serve::make_multi_tenant_workload(g, specs, 4003);
  std::vector<Weight> out;
  // Per-batch serve latency, log2-bucketed; surfaces below as the
  // informational batch_ns_p* keys (warn-only in the CI gate).
  PMTE_OBS_ONLY(obs::Histogram lat);
  for (std::size_t b = 0; b < kBatches; ++b) {
    if (b == kSwapAt) server.stage_swap(0, fp_b);
    const std::size_t lo = stream.size() * b / kBatches;
    const std::size_t hi = stream.size() * (b + 1) / kBatches;
    const Timer timer;
    server.serve(std::span(stream).subspan(lo, hi - lo), out);
    PMTE_OBS_ONLY(
        lat.record(static_cast<std::uint64_t>(timer.seconds() * 1e9)));
  }

  std::vector<CounterScenario> scenarios;
  std::uint64_t total_queries = 0;
  for (std::size_t t = 0; t < kTenants; ++t) {
    const auto& c = server.counters(static_cast<serve::TenantId>(t));
    total_queries += c.pairs;
    const std::string name =
        "server_tenant" + std::to_string(t) + "_" +
        serve::workload_name(specs[t].kind) + "_" +
        serve::policy_name(tenant_policy(t)) +
        (t == 0 ? "_swapped" : "");
    scenarios.push_back(CounterScenario{name,
                                        {{"queries", c.pairs},
                                         {"tree_lookups", c.tree_lookups},
                                         {"lca_probes", c.lca_probes},
                                         {"cache_misses", c.cache_misses},
                                         {"cache_hits", c.cache_hits},
                                         {"cache_admissions",
                                          c.cache_admissions},
                                         {"cache_conflicts",
                                          c.cache_conflicts},
                                         {"epoch", c.epoch},
                                         {"result_hash32",
                                          c.result_hash32()}}});
  }
  // Registry lifecycle of the scenario: both ensembles loaded, tenant 0
  // flipped mid-stream, and the swapped-out epoch stays resident because
  // tenants 1-3 still serve it (nothing retires).
  scenarios.push_back(
      CounterScenario{"server_registry",
                      {{"queries", total_queries},
                       {"ensembles_resident", server.registry().size()},
                       {"epochs_retired", server.epochs_retired()}}});
  PMTE_OBS_ONLY({
    auto& reg_metrics = scenarios.back().metrics;
    reg_metrics.emplace_back("batch_ns_p50", lat.percentile(0.50));
    reg_metrics.emplace_back("batch_ns_p95", lat.percentile(0.95));
    reg_metrics.emplace_back("batch_ns_p99", lat.percentile(0.99));
  });
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header(
      "E-server: many-tenant serving engine",
      "serial routing + parallel per-tenant shards keep every stream's "
      "outputs and counters bit-identical at any thread count; epoch "
      "hot-swaps flip at batch boundaries without a serving gap");
  const std::size_t per_tenant = quick(cli) ? 50000 : 200000;
  const std::size_t batches = 8;
  Rng rng(cli.seed());
  auto inst = make_instance("gnm", quick(cli) ? 1024 : 4096, rng());

  const auto e_seed = rng();
  Table t({"tenants", "queries", "batches", "swap", "route [ms]",
           "Mq/s", "ns/query"});
  for (const std::size_t tenants : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    for (const bool swap : {false, true}) {
      serve::Server server;
      const auto fp_a = server.load(
          serve::FrtEnsemble::build(inst.graph, e_seed, ensemble_options(8)));
      const auto fp_b = server.load(serve::FrtEnsemble::build(
          inst.graph, e_seed + 1, ensemble_options(8)));
      for (std::size_t tt = 0; tt < tenants; ++tt) {
        serve::TenantConfig cfg;
        cfg.ensemble = fp_a;
        cfg.policy = tenant_policy(tt);
        cfg.cache_capacity = 1 << 14;
        server.add_tenant(cfg);
      }
      const auto stream = serve::make_multi_tenant_workload(
          inst.graph, tenant_specs(tenants, per_tenant / tenants * 4), 77);
      std::vector<Weight> out;
      double seconds = 0.0;
      for (std::size_t b = 0; b < batches; ++b) {
        if (swap && b == batches / 2) server.stage_swap(0, fp_b);
        const std::size_t lo = stream.size() * b / batches;
        const std::size_t hi = stream.size() * (b + 1) / batches;
        Timer timer;
        server.serve(std::span(stream).subspan(lo, hi - lo), out);
        seconds += timer.seconds();
      }
      const auto q = static_cast<double>(stream.size());
      t.add_row({cell(tenants), cell(stream.size()), cell(batches),
                 swap ? "mid-stream" : "none", cell(seconds * 1e3),
                 cell(q / seconds / 1e6), cell(seconds * 1e9 / q)});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
