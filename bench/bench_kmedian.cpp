// E9 — k-median quality (Section 9, Theorem 9.2).
//
// Claim: the FRT-based algorithm achieves an expected O(log k)
// approximation on graph inputs.  We report its cost relative to a local
// search baseline (≈5-approximation) and to random centers.

#include "bench/bench_common.hpp"
#include "src/apps/kmedian.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E9: k-median",
               "Theorem 9.2 — expected O(log k)-approximation with "
               "~O(m^(1+eps)+k^3) work");
  Rng rng(cli.seed());
  const Vertex n = quick(cli) ? 256 : 900;
  Table t({"family", "n", "k", "FRT cost", "local-search cost",
           "random cost", "FRT/LS", "|Q|", "FRT time [ms]"});

  for (const auto* family : {"grid", "geometric"}) {
    auto inst = make_instance(family, n, rng());
    const auto& g = inst.graph;
    for (const std::size_t k : {5U, 10U, 20U}) {
      KMedianOptions opts;
      opts.trees = 4;
      const Timer timer;
      const auto frt = kmedian_frt(g, k, opts, rng);
      const double frt_ms = timer.millis();
      const auto ls = kmedian_local_search(g, k, 8, rng);
      const auto random = kmedian_random(g, k, rng);
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 cell(k), cell(frt.cost), cell(ls.cost), cell(random.cost),
                 cell(frt.cost / ls.cost), cell(frt.candidates),
                 cell(frt_ms)});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
