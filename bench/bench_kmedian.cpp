// E9 — k-median quality (Section 9, Theorem 9.2).
//
// Claim: the FRT-based algorithm achieves an expected O(log k)
// approximation on graph inputs.  We report its cost relative to a local
// search baseline (≈5-approximation) and to random centers.


#include "bench/bench_common.hpp"
#include "src/apps/kmedian.hpp"

namespace pmte::bench {
namespace {

/// One gated scenario: run the full pipeline with the chosen HST backend
/// and report the tree-walk counters plus a 32-bit hash of the solution
/// (cost bits + centers).  flat and tree scenarios over the same seed must
/// hash identically — the backends are bit-identical by construction.
CounterScenario kmedian_scenario(const std::string& name,
                                 const std::string& family, Vertex n,
                                 std::size_t k, std::uint64_t seed,
                                 bool use_flat_index) {
  auto inst = make_instance(family, n, seed);
  Rng rng(seed);
  KMedianOptions opts;
  opts.trees = 3;
  opts.use_flat_index = use_flat_index;
  const auto r = kmedian_frt(inst.graph, k, opts, rng);
  std::uint64_t hash = fnv1a_fold_f64(kFnv1aInit, r.cost);
  hash = fnv1a_fold_f64(hash, r.tree_cost);
  for (const Vertex c : r.centers) hash = fnv1a_fold(hash, c);
  return CounterScenario{
      name,
      {{"tree_node_visits", r.counters.tree_node_visits},
       {"tree_lookups", r.counters.tree_lookups},
       {"lca_probes", r.counters.lca_probes},
       {"result_hash32", fold32(hash)}}};
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  scenarios.push_back(
      kmedian_scenario("kmedian_flat_grid_256", "grid", 256, 10, 4101, true));
  scenarios.push_back(
      kmedian_scenario("kmedian_tree_grid_256", "grid", 256, 10, 4101, false));
  scenarios.push_back(
      kmedian_scenario("kmedian_flat_gnm_256", "gnm", 256, 8, 4102, true));
  scenarios.push_back(
      kmedian_scenario("kmedian_tree_gnm_256", "gnm", 256, 8, 4102, false));
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header("E9: k-median",
               "Theorem 9.2 — expected O(log k)-approximation with "
               "~O(m^(1+eps)+k^3) work");
  Rng rng(cli.seed());
  const Vertex n = quick(cli) ? 256 : 900;
  Table t({"family", "n", "k", "FRT cost", "local-search cost",
           "random cost", "FRT/LS", "|Q|", "FRT time [ms]"});

  for (const auto* family : {"grid", "geometric"}) {
    auto inst = make_instance(family, n, rng());
    const auto& g = inst.graph;
    for (const std::size_t k : {5U, 10U, 20U}) {
      KMedianOptions opts;
      opts.trees = 4;
      const Timer timer;
      const auto frt = kmedian_frt(g, k, opts, rng);
      const double frt_ms = timer.millis();
      const auto ls = kmedian_local_search(g, k, 8, rng);
      const auto random = kmedian_random(g, k, rng);
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 cell(k), cell(frt.cost), cell(ls.cost), cell(random.cost),
                 cell(frt.cost / ls.cost), cell(frt.candidates),
                 cell(frt_ms)});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
