// E11 — OpenMP strong scaling of one MBF-like iteration.
//
// The paper's polylog-depth claims presume ideal parallel execution of the
// propagate/aggregate/filter phases; this bench measures how the pull-based
// implementation scales with threads on one LE-list iteration and on a full
// oracle FRT sample.

#include "bench/bench_common.hpp"
#include "src/frt/le_lists.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E11: thread scaling",
               "depth bounds presume parallel propagate/aggregate/filter; "
               "measured speedup of the OpenMP realisation");
  Rng rng(cli.seed());
  const Vertex n = quick(cli) ? 20000 : 60000;
  const auto g = make_gnm(n, 4 * static_cast<std::size_t>(n), {1.0, 4.0},
                          rng);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const int max_threads = num_threads();

  Table t({"threads", "5 LE iterations [ms]", "speedup",
           "64 Dijkstras [ms]", "speedup", "oracle FRT [ms]", "speedup"});
  double base_iter = 0.0, base_dij = 0.0, base_frt = 0.0;
  const Vertex n_frt = quick(cli) ? 256 : 512;
  const auto g_frt = make_instance("gnm", n_frt, 123).graph;
  for (int threads = 1; threads <= max_threads; ++threads) {
    set_num_threads(threads);
    // Phase 1: the memory/allocation-bound semimodule merges, through the
    // double-buffered frontier engine (steady-state allocation-free).
    const LeListAlgebra alg;
    MbfEngine<LeListAlgebra> engine(g, alg, le_initial_state(order));
    const Timer t_iter;
    for (int i = 0; i < 5; ++i) {
      (void)engine.step();
    }
    const double iter_ms = t_iter.millis();

    // Phase 2: compute-bound source-parallel Dijkstras (hop set / APSP
    // style work).
    const Timer t_dij;
    parallel_for(
        64, [&](std::size_t s) { (void)dijkstra(g, static_cast<Vertex>(s)); },
        1);
    const double dij_ms = t_dij.millis();

    // Phase 3: an end-to-end oracle FRT sample.
    Rng frt_rng(cli.seed() + 17);
    const Timer t_frt;
    (void)sample_frt_oracle(g_frt, frt_rng);
    const double frt_ms = t_frt.millis();

    if (threads == 1) {
      base_iter = iter_ms;
      base_dij = dij_ms;
      base_frt = frt_ms;
    }
    t.add_row({cell(threads), cell(iter_ms), cell(base_iter / iter_ms),
               cell(dij_ms), cell(base_dij / dij_ms), cell(frt_ms),
               cell(base_frt / frt_ms)});
  }
  set_num_threads(max_threads);
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
