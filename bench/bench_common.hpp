#pragma once
// Shared helpers for the experiment benches (E1–E14): consistent headers,
// graph-family construction, and run-scaling via --scale=small|full.

#include <cmath>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace pmte::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n## " << experiment << "\n\n"
            << "Paper claim: " << claim << "\n\n";
}

/// Whether the bench runs the reduced sweep (default: full).
inline bool quick(const Cli& cli) { return cli.get("scale", "full") == "small"; }

/// A named graph instance for family sweeps.
struct Instance {
  std::string name;
  Graph graph;
};

inline Instance make_instance(const std::string& family, Vertex n,
                              std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return {family, make_path(n, {1.0, 2.0}, rng)};
  if (family == "cycle") return {family, make_cycle(n, {1.0, 2.0}, rng)};
  if (family == "grid") {
    Vertex side = 1;
    while (side * side < n) ++side;
    return {family, make_grid(side, side, {1.0, 2.0}, rng)};
  }
  if (family == "gnm") return {family, make_gnm(n, 3 * n, {1.0, 4.0}, rng)};
  if (family == "geometric") {
    const double radius = 2.2 / std::sqrt(static_cast<double>(n));
    return {family, make_geometric(n, radius, rng)};
  }
  if (family == "caterpillar") {
    return {family, make_caterpillar(n / 4, 3, 4.0, 1.0)};
  }
  if (family == "cliquechain") {
    return {family, make_clique_chain(n / 8, 8, {1.0, 2.0}, rng)};
  }
  throw std::invalid_argument("unknown graph family: " + family);
}

}  // namespace pmte::bench
