#pragma once
// Shared helpers for the experiment benches (E1–E14): consistent headers,
// graph-family construction, and run-scaling via --scale=small|full.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace pmte::bench {

// ---------------------------------------------------------------------------
// Deterministic counter scenarios (the CI bench gate).
//
// Benches that model a paper claim with the WorkDepth counters expose a
// `--counters` mode: fixed-seed scenarios whose relaxation / edges-touched /
// work / depth counts are logical-operation counts — identical across
// thread counts, compilers, and machines.  scripts/run_benches.sh embeds
// the JSON under the .counters key of BENCH_<name>.json, and the CI
// bench-gate job hard-fails on >5% growth over the committed baseline via
// scripts/check_bench_regression.py.

/// One gated scenario: a name plus ordered (metric, value) pairs.
struct CounterScenario {
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> metrics;
};

/// True iff the binary was invoked with --counters (scale flags ignored).
inline bool wants_counters(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--counters") == 0) return true;
  }
  return false;
}

/// Fold a double's IEEE-754 bit pattern into an FNV-1a hash (result
/// pinning for the counter scenarios).
inline std::uint64_t fnv1a_fold_f64(std::uint64_t hash, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_fold(hash, bits);
}

/// Fold a 64-bit hash to the 32 bits the counter JSON carries.
inline std::uint64_t fold32(std::uint64_t hash) {
  return (hash >> 32) ^ (hash & 0xffffffffULL);
}

/// FNV-1a over a result vector's bit patterns, folded to 32 bits so the
/// value survives double-precision JSON rewriting.
inline std::uint64_t result_hash32(const std::vector<double>& out) {
  std::uint64_t hash = kFnv1aInit;
  for (const double d : out) hash = fnv1a_fold_f64(hash, d);
  return fold32(hash);
}

/// Emit the scenarios in the schema check_bench_regression.py consumes.
inline void emit_counters(std::ostream& os,
                          const std::vector<CounterScenario>& scenarios) {
  os << "{\n  \"schema\": 1,\n  \"scenarios\": {\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    os << "    \"" << s.name << "\": {";
    for (std::size_t j = 0; j < s.metrics.size(); ++j) {
      os << "\"" << s.metrics[j].first << "\": " << s.metrics[j].second
         << (j + 1 < s.metrics.size() ? ", " : "");
    }
    os << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n## " << experiment << "\n\n"
            << "Paper claim: " << claim << "\n\n";
}

/// Whether the bench runs the reduced sweep (default: full).
inline bool quick(const Cli& cli) { return cli.get("scale", "full") == "small"; }

/// A named graph instance for family sweeps.
struct Instance {
  std::string name;
  Graph graph;
};

inline Instance make_instance(const std::string& family, Vertex n,
                              std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return {family, make_path(n, {1.0, 2.0}, rng)};
  if (family == "cycle") return {family, make_cycle(n, {1.0, 2.0}, rng)};
  if (family == "grid") {
    Vertex side = 1;
    while (side * side < n) ++side;
    return {family, make_grid(side, side, {1.0, 2.0}, rng)};
  }
  if (family == "gnm") return {family, make_gnm(n, 3 * n, {1.0, 4.0}, rng)};
  if (family == "geometric") {
    const double radius = 2.2 / std::sqrt(static_cast<double>(n));
    return {family, make_geometric(n, radius, rng)};
  }
  if (family == "caterpillar") {
    return {family, make_caterpillar(n / 4, 3, 4.0, 1.0)};
  }
  if (family == "cliquechain") {
    return {family, make_clique_chain(n / 8, 8, {1.0, 2.0}, rng)};
  }
  throw std::invalid_argument("unknown graph family: " + family);
}

}  // namespace pmte::bench
