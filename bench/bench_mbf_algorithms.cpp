// E14 — the MBF-like algorithm collection (Section 3) against classical
// baselines: sanity performance of the algebraic framework.

#include "bench/bench_common.hpp"
#include "src/graph/delta_stepping.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algebras.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/mbf/engine.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E14: MBF-like algorithm collection",
               "Section 3 — one framework, many algorithms; timings vs "
               "classical baselines");
  Rng rng(cli.seed());
  const Vertex n = quick(cli) ? 512 : 2048;
  const auto g = make_gnm(n, 4 * static_cast<std::size_t>(n), {1.0, 5.0},
                          rng);
  Table t({"problem", "method", "n", "time [ms]", "result checksum"});

  auto timed = [&](const char* problem, const char* method, auto&& fn) {
    const Timer timer;
    const double checksum = fn();
    t.add_row({problem, method, cell(std::size_t{g.num_vertices()}),
               cell(timer.millis()), cell(checksum)});
  };

  timed("SSSP", "MBF-like (Ex. 3.3)", [&] {
    const auto d = mbf_sssp(g, 0);
    double s = 0;
    for (const Weight x : d) {
      if (is_finite(x)) s += x;
    }
    return s;
  });
  timed("SSSP", "Dijkstra", [&] {
    const auto d = dijkstra(g, 0).dist;
    double s = 0;
    for (const Weight x : d) {
      if (is_finite(x)) s += x;
    }
    return s;
  });
  timed("SSSP", "Delta-stepping", [&] {
    const auto d = delta_stepping(g, 0);
    double s = 0;
    for (const Weight x : d.dist) {
      if (is_finite(x)) s += x;
    }
    return s;
  });
  timed("k-SSP (k=8)", "MBF-like (Ex. 3.4)", [&] {
    const auto maps = mbf_kssp(g, 8);
    double s = 0;
    for (const auto& m : maps) s += static_cast<double>(m.size());
    return s;
  });
  timed("source detection (16 sources, k=4)", "MBF-like (Ex. 3.2)", [&] {
    std::vector<Vertex> sources;
    for (int i = 0; i < 16; ++i) {
      sources.push_back(static_cast<Vertex>(rng.below(g.num_vertices())));
    }
    const auto maps = mbf_source_detection(g, sources, g.num_vertices(), 4);
    double s = 0;
    for (const auto& m : maps) s += static_cast<double>(m.size());
    return s;
  });
  timed("forest fire (radius 8)", "MBF-like (Ex. 3.7)", [&] {
    std::vector<Vertex> burning{0, static_cast<Vertex>(n / 2)};
    const auto ff = mbf_forest_fire(g, burning, 8.0);
    double s = 0;
    for (const bool b : ff.alarmed) s += b;
    return s;
  });
  timed("SSWP", "MBF-like (Ex. 3.13)", [&] {
    const auto w = mbf_sswp(g, 0);
    double s = 0;
    for (const Weight x : w) {
      if (is_finite(x)) s += x;
    }
    return s;
  });
  timed("connectivity (h=6)", "MBF-like (Ex. 3.25)", [&] {
    std::vector<Vertex> sources{0};
    const auto reach = mbf_reachability(g, sources, 6);
    double s = 0;
    for (const auto& r : reach) s += static_cast<double>(r.size());
    return s;
  });
  {
    // k-SDP runs on a smaller instance (path-set states are heavy).
    const auto small = make_gnm(64, 160, {1.0, 4.0}, rng);
    timed("k-SDP (k=2)", "MBF-like over Pmin,+ (Ex. 3.23)", [&] {
      const auto r = mbf_ksdp(small, 0, 2);
      double s = 0;
      for (const auto& ps : r) s += static_cast<double>(ps.size());
      return s;
    });
  }
  t.print();

  // Frontier vs dense engine on long-diameter families, where re-scanning
  // all 2m edges for Θ(n) rounds is maximally wasteful: the changed set is
  // a narrow wavefront, so the frontier engine relaxes asymptotically
  // fewer edges (the counters are deterministic — the same numbers gate CI
  // via bench_micro_ops --counters).
  Table f({"family", "n", "engine", "time [ms]", "relaxations",
           "edges touched", "iterations"});
  auto engine_row = [&](const Instance& inst, MbfMode mode,
                        const char* label) {
    ScalarDistanceAlgebra alg;
    std::vector<Weight> x0(inst.graph.num_vertices(), inf_weight());
    x0[0] = 0.0;
    const WorkDepthScope scope;
    const Timer timer;
    const auto r = mbf_run(inst.graph, alg, std::move(x0),
                           inst.graph.num_vertices(), 1.0, mode);
    f.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}),
               label, cell(timer.millis()),
               cell(static_cast<std::size_t>(scope.relaxations_delta())),
               cell(static_cast<std::size_t>(scope.edges_touched_delta())),
               cell(r.iterations)});
  };
  const Vertex n_sparse = quick(cli) ? 2048 : 8192;
  for (const char* family : {"path", "grid"}) {
    const auto inst = make_instance(family, n_sparse, 7);
    engine_row(inst, MbfMode::kDense, "dense");
    engine_row(inst, MbfMode::kAuto, "frontier");
  }
  f.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
