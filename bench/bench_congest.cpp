// E8 — Congest round complexity (Section 8, Theorem 8.1).
//
// Claims: Khan et al. take O(SPD(G)·log n) rounds; the skeleton-based
// algorithm takes Õ(√n + D(G)).  The crossover appears on graphs with
// SPD ≫ √n but small hop diameter.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/congest/congest.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/parallel/counters.hpp"

namespace pmte::bench {
namespace {

/// Long unit path plus a heavy star centre: SPD = n−1, D(G) = 2.
Graph path_with_star(Vertex n) {
  auto edges = make_path(n - 1).edge_list();
  for (Vertex v = 0; v + 1 < n; ++v) {
    edges.push_back(WeightedEdge{v, static_cast<Vertex>(n - 1), 1e6});
  }
  return Graph::from_edges(n, std::move(edges));
}

void run(const Cli& cli) {
  print_header("E8: Congest rounds",
               "Theorem 8.1 — skeleton algorithm ~O(sqrt(n)+D) rounds vs "
               "O(SPD log n) for direct iteration (Khan et al.)");
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{200, 400}
                 : std::vector<Vertex>{200, 400, 800, 1600};
  Rng rng(cli.seed());
  Table t({"graph", "n", "SPD-ish", "sqrt(n)", "khan rounds", "khan relax",
           "skeleton rounds", "skel setup", "skel iters", "|S|",
           "spanner |E|"});

  auto run_case = [&](const std::string& name, const Graph& g) {
    const auto order = VertexOrder::random(g.num_vertices(), rng);
    const WorkDepthScope khan_scope;
    const auto khan = congest_frt_khan(g, order);
    const auto khan_relax = khan_scope.relaxations_delta();
    SkeletonOptions opts;
    opts.size_constant = 0.15;
    const auto sk = congest_frt_skeleton(g, opts, rng);
    t.add_row({name, cell(std::size_t{g.num_vertices()}),
               cell(std::size_t{khan.le.iterations}),
               cell(std::sqrt(static_cast<double>(g.num_vertices()))),
               cell(static_cast<double>(khan.rounds)),
               cell(static_cast<std::size_t>(khan_relax)),
               cell(static_cast<double>(sk.run.rounds)),
               cell(static_cast<double>(sk.run.rounds_setup)),
               cell(static_cast<double>(sk.run.rounds_iterations)),
               cell(sk.run.skeleton_size),
               cell(sk.run.skeleton_spanner_edges)});
  };

  for (const Vertex n : sizes) {
    run_case("path+star", path_with_star(n));
  }
  for (const Vertex n : sizes) {
    auto inst = make_instance("cliquechain", n, rng());
    run_case(inst.name, inst.graph);
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
