// E15 — LE-list distance sketches (extension application; Cohen [12],
// Cohen–Kaplan [14] lineage).
//
// Claim shape: sketches of T·O(log n) entries per vertex answer distance
// queries with small multiplicative overestimation that improves with T.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/apps/distance_sketches.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E15: distance sketches",
               "LE lists as distance labels: T x O(log n) entries/vertex, "
               "upper-bound estimates tightening with T");
  Rng rng(cli.seed());
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{256}
                                        : std::vector<Vertex>{256, 1024};
  Table t({"family", "n", "T", "entries/vertex", "avg est/dist",
           "p99 est/dist", "max est/dist", "build [ms]"});
  for (const auto* family : {"gnm", "grid", "geometric"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      // Exact distances from sampled sources for evaluation.
      std::vector<Vertex> sources;
      for (int i = 0; i < 12; ++i) {
        sources.push_back(static_cast<Vertex>(rng.below(g.num_vertices())));
      }
      std::vector<std::vector<Weight>> exact;
      exact.reserve(sources.size());
      for (const Vertex s : sources) exact.push_back(dijkstra(g, s).dist);

      for (const std::size_t T : {1U, 4U, 16U}) {
        const Timer timer;
        const auto sk = DistanceSketches::build(g, T, rng);
        const double ms = timer.millis();
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sources.size(); ++i) {
          for (Vertex v = 0; v < g.num_vertices();
               v += std::max<Vertex>(1, g.num_vertices() / 100)) {
            if (v == sources[i] || !is_finite(exact[i][v]) ||
                exact[i][v] <= 0) {
              continue;
            }
            ratios.push_back(sk.query(sources[i], v) / exact[i][v]);
          }
        }
        const auto s = summarize(std::move(ratios));
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}), cell(T),
                   cell(sk.average_entries_per_vertex()), cell(s.mean),
                   cell(s.p99), cell(s.max), cell(ms)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
