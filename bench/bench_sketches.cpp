// E15 — LE-list distance sketches (extension application; Cohen [12],
// Cohen–Kaplan [14] lineage).
//
// Claim shape: sketches of T·O(log n) entries per vertex answer distance
// queries with small multiplicative overestimation that improves with T.

#include <cmath>
#include <utility>

#include "bench/bench_common.hpp"
#include "src/apps/distance_sketches.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/workloads.hpp"

namespace pmte::bench {
namespace {

/// The pre-serving sketch query path, counters included: per (pair, tree),
/// find the LCA by climbing parent pointers from both leaves in lockstep
/// (2 FrtTree::Node reads per hop) and read the tree's LCA-level distance
/// table — the same doubles the flat index serves, so the result hash must
/// equal the EnsembleSketches scenario's.
Weight tree_climb_min(const std::vector<FrtTree>& trees, Vertex u, Vertex v,
                      std::uint64_t* node_visits) {
  Weight best = inf_weight();
  for (const auto& t : trees) {
    auto a = t.leaf_of(u);
    auto b = t.leaf_of(v);
    while (a != b) {
      a = t.node(a).parent;
      b = t.node(b).parent;
      *node_visits += 2;
    }
    best = std::min(best, t.distance_at_lca_level(t.node(a).level));
  }
  return best;
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  const std::uint64_t master = 4301;
  const std::size_t k = 4;
  auto inst = make_instance("gnm", 256, master);

  // The k trees of the ensemble, re-sampled the way FrtEnsemble::build
  // seeds its direct pipeline (stream 1+t of the master seed), so the
  // climbing baseline folds the exact same per-tree distances.
  std::vector<FrtTree> trees;
  for (std::size_t t = 0; t < k; ++t) {
    Rng rng(split_seed(master, 1 + t));
    trees.push_back(sample_frt_direct(inst.graph, rng).tree);
  }
  serve::EnsembleOptions eopts;
  eopts.trees = k;
  eopts.pipeline = serve::EnsemblePipeline::direct;
  auto sk = EnsembleSketches::from_ensemble(serve::FrtEnsemble::build(
      inst.graph, master, eopts));

  serve::WorkloadOptions wopts;
  wopts.pairs = 100000;
  Rng urng(4302);
  const auto uniform = serve::make_workload(
      inst.graph, serve::WorkloadKind::uniform, wopts, urng);

  {
    std::uint64_t node_visits = 0;
    std::vector<Weight> out;
    out.reserve(uniform.size());
    for (const auto& [u, v] : uniform) {
      out.push_back(u == v ? 0.0
                           : tree_climb_min(trees, u, v, &node_visits));
    }
    scenarios.push_back(CounterScenario{
        "sketches_tree_uniform_gnm_256",
        {{"queries", uniform.size()},
         {"tree_node_visits", node_visits},
         {"result_hash32", result_hash32(out)}}});
  }
  {
    std::vector<Weight> out;
    const auto st = sk.query_batch(uniform, out);
    scenarios.push_back(
        CounterScenario{"sketches_flat_uniform_gnm_256",
                        {{"queries", st.pairs},
                         {"tree_node_visits", 0},
                         {"tree_lookups", st.tree_lookups},
                         {"lca_probes", st.lca_probes},
                         {"result_hash32", result_hash32(out)}}});
  }

  // Zipf traffic with and without the hot-pair cache: identical hashes,
  // the cached run computes only the distinct hot pairs.
  Rng zrng(4303);
  const auto zipf = serve::make_workload(inst.graph,
                                         serve::WorkloadKind::zipf, wopts,
                                         zrng);
  {
    std::vector<Weight> out;
    const auto st = sk.query_batch(zipf, out);
    scenarios.push_back(
        CounterScenario{"sketches_flat_zipf_gnm_256",
                        {{"queries", st.pairs},
                         {"tree_lookups", st.tree_lookups},
                         {"lca_probes", st.lca_probes},
                         {"result_hash32", result_hash32(out)}}});
  }
  {
    sk.enable_cache(1 << 15);
    std::vector<Weight> out;
    const auto st = sk.query_batch(zipf, out);
    sk.enable_cache(0);
    scenarios.push_back(
        CounterScenario{"sketches_flat_zipf_cached_gnm_256",
                        {{"queries", st.pairs},
                         {"tree_lookups", st.tree_lookups},
                         {"lca_probes", st.lca_probes},
                         {"cache_hits", st.cache_hits},
                         {"cache_misses", st.cache_misses},
                         {"result_hash32", result_hash32(out)}}});
  }
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header("E15: distance sketches",
               "LE lists as distance labels: T x O(log n) entries/vertex, "
               "upper-bound estimates tightening with T");
  Rng rng(cli.seed());
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{256}
                                        : std::vector<Vertex>{256, 1024};
  Table t({"family", "n", "T", "entries/vertex", "avg est/dist",
           "p99 est/dist", "max est/dist", "build [ms]"});
  for (const auto* family : {"gnm", "grid", "geometric"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      // Exact distances from sampled sources for evaluation.
      std::vector<Vertex> sources;
      for (int i = 0; i < 12; ++i) {
        sources.push_back(static_cast<Vertex>(rng.below(g.num_vertices())));
      }
      std::vector<std::vector<Weight>> exact;
      exact.reserve(sources.size());
      for (const Vertex s : sources) exact.push_back(dijkstra(g, s).dist);

      for (const std::size_t T : {1U, 4U, 16U}) {
        const Timer timer;
        const auto sk = DistanceSketches::build(g, T, rng);
        const double ms = timer.millis();
        std::vector<double> ratios;
        for (std::size_t i = 0; i < sources.size(); ++i) {
          for (Vertex v = 0; v < g.num_vertices();
               v += std::max<Vertex>(1, g.num_vertices() / 100)) {
            if (v == sources[i] || !is_finite(exact[i][v]) ||
                exact[i][v] <= 0) {
              continue;
            }
            ratios.push_back(sk.query(sources[i], v) / exact[i][v]);
          }
        }
        const auto s = summarize(std::move(ratios));
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}), cell(T),
                   cell(sk.average_entries_per_vertex()), cell(s.mean),
                   cell(s.p99), cell(s.max), cell(ms)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
