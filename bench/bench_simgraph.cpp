// E1 + E2 — the simulated graph H (Section 4, Theorem 4.5).
//
// Claim E1: SPD(H) ∈ O(log² n) w.h.p. even when SPD(G) = Θ(n).
// Claim E2: dist_G ≤ dist_H ≤ (1+ε̂)^{Λ+1}·dist_G (Eq. 4.14/4.16).
//
// For every family/n we report SPD(G), SPD(H) (max over sampled sources),
// Λ, and the measured max/avg distortion dist_H/dist_G over sampled pairs
// for several ε̂.

#include <algorithm>
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/hopset/hopset.hpp"
#include "src/parallel/parallel.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte::bench {
namespace {

unsigned sampled_spd(const Graph& g, std::size_t sources, Rng& rng) {
  std::vector<Vertex> srcs;
  if (sources >= g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) srcs.push_back(v);
  } else {
    for (std::size_t i = 0; i < sources; ++i) {
      srcs.push_back(static_cast<Vertex>(rng.below(g.num_vertices())));
    }
  }
  std::vector<unsigned> per(srcs.size(), 0);
  parallel_for(srcs.size(), [&](std::size_t i) {
    const auto hops = min_hops_on_shortest_paths(g, srcs[i]);
    unsigned w = 0;
    for (unsigned h : hops) {
      if (h != ~0U) w = std::max(w, h);
    }
    per[i] = w;
  });
  unsigned worst = 0;
  for (unsigned w : per) worst = std::max(worst, w);
  return worst;
}

void run(const Cli& cli) {
  print_header("E1: SPD(H) vs SPD(G)",
               "Theorem 4.5 — SPD(H) in O(log^2 n) w.h.p. while SPD(G) can "
               "be Theta(n)");
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{128, 256}
                 : std::vector<Vertex>{128, 256, 512, 1024};
  Rng rng(cli.seed());

  Table t({"family", "n", "SPD(G)", "SPD(H)", "Lambda", "log2^2(n)",
           "hopset edges", "d"});
  Table d({"family", "n", "eps", "max dist_H/dist_G", "avg dist_H/dist_G",
           "bound (1+eps)^(L+1)"});
  for (const auto* family : {"path", "cycle", "caterpillar"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      const unsigned spd_g = sampled_spd(g, 24, rng);
      const double log2n = std::log2(static_cast<double>(g.num_vertices()));

      const auto hopset = build_hub_hopset(g, {}, rng);
      for (const double eps : {1.0 / std::ceil(log2n), 0.05, 0.1}) {
        auto h = build_simulated_graph(g, hopset, eps, rng);
        const auto mat = h.materialize(false);
        if (eps == 0.05) {
          const unsigned spd_h = sampled_spd(mat, 16, rng);
          t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                     cell(std::size_t{spd_g}), cell(std::size_t{spd_h}),
                     cell(std::size_t{h.max_level()}), cell(log2n * log2n),
                     cell(hopset.edges.size()), cell(std::size_t{hopset.d})});
        }
        RunningStats ratio;
        for (int s = 0; s < 8; ++s) {
          const auto src = static_cast<Vertex>(rng.below(g.num_vertices()));
          const auto dg = dijkstra(g, src).dist;
          const auto dh = dijkstra(mat, src).dist;
          for (Vertex v = 0; v < g.num_vertices(); ++v) {
            if (v != src && is_finite(dg[v]) && dg[v] > 0) {
              ratio.add(dh[v] / dg[v]);
            }
          }
        }
        const double bound =
            std::pow(1.0 + eps, static_cast<double>(h.max_level()) + 1);
        d.add_row({inst.name, cell(std::size_t{g.num_vertices()}), cell(eps),
                   cell(ratio.max()), cell(ratio.mean()), cell(bound)});
      }
    }
  }
  t.print();
  print_header("E2: distance distortion of H",
               "Equation (4.14): 1 <= dist_H/dist_G <= (1+eps)^(Lambda+1)");
  d.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
