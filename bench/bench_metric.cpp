// E6 — approximate metric construction (Section 6).
//
// Claims: Theorem 6.1 — a (1+o(1))-approximate metric via APSP on H;
// Theorem 6.2 — an O(1)-approximate metric after Baswana–Sen
// sparsification, cheaper on dense graphs.  We compare stretch, work and
// time against the exact APSP baseline (n Dijkstras).

#include "bench/bench_common.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/metric/approx_metric.hpp"
#include "src/parallel/counters.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E6: approximate metrics",
               "Theorem 6.1 — (1+o(1))-approximate metric; Theorem 6.2 — "
               "O(1)-approximate after spanner sparsification");
  // APSP states are Θ(n) entries per vertex (no filtering is possible —
  // the answer itself is quadratic), so sizes stay small; the work column
  // carries the asymptotic comparison.
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{96}
                                        : std::vector<Vertex>{96, 192};
  Rng rng(cli.seed());
  Table t({"family", "n", "method", "stretch", "H-iters", "work [ops]",
           "time [ms]", "aux edges"});

  for (const auto* family : {"gnm", "grid"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      std::vector<Weight> exact;
      double exact_ms = 0;
      {
        const Timer timer;
        exact = exact_apsp(g);
        exact_ms = timer.millis();
      }
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 "exact (n Dijkstra)", cell(1.0), cell(std::size_t{0}),
                 cell(static_cast<double>(g.num_edges()) * g.num_vertices()),
                 cell(exact_ms), cell(std::size_t{0})});

      ApproxMetricOptions opts;
      opts.eps_hat = 0.05;
      {
        const auto r = approximate_metric(g, opts, rng);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   "Thm 6.1 (oracle APSP)",
                   cell(metric_stretch(r.dist, exact)),
                   cell(std::size_t{r.h_iterations}),
                   cell(static_cast<double>(r.work)), cell(r.seconds * 1e3),
                   cell(r.hopset_edges)});
      }
      for (const unsigned k : {2U, 3U}) {
        const auto r = approximate_metric_spanner(g, k, opts, rng);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   "Thm 6.2 (spanner k=" + std::to_string(k) + ")",
                   cell(metric_stretch(r.dist, exact)),
                   cell(std::size_t{r.h_iterations}),
                   cell(static_cast<double>(r.work)), cell(r.seconds * 1e3),
                   cell(r.spanner_edges)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
