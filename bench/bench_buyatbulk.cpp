// E10 — buy-at-bulk network design (Section 10, Theorem 10.2).
//
// Claim: routing on a sampled FRT tree and mapping back gives an expected
// O(log n)-approximation.  We report the tree-based cost against the
// fractional lower bound and the no-consolidation direct-routing baseline.

#include "bench/bench_common.hpp"
#include "src/apps/buyatbulk.hpp"

namespace pmte::bench {
namespace {

/// One gated scenario: route a fixed demand set with the chosen tree
/// backend; flat and tree variants over the same seed must hash
/// identically (same flows, costs, loaded edges — different walk costs).
CounterScenario bab_scenario(const std::string& name,
                             const std::string& family, Vertex n,
                             std::size_t demand_count, std::uint64_t seed,
                             bool use_flat_index) {
  auto inst = make_instance(family, n, seed);
  const std::vector<CableType> cables{{1.0, 1.0}, {8.0, 4.0}, {64.0, 16.0}};
  Rng rng(seed);
  std::vector<Demand> demands;
  while (demands.size() < demand_count) {
    const auto s = static_cast<Vertex>(rng.below(inst.graph.num_vertices()));
    const auto t = static_cast<Vertex>(rng.below(inst.graph.num_vertices()));
    if (s == t) continue;
    demands.push_back(Demand{s, t, std::floor(rng.uniform(1.0, 8.0))});
  }
  BabOptions opts;
  opts.use_flat_index = use_flat_index;
  const auto r = buy_at_bulk(inst.graph, demands, cables, opts, rng);
  std::uint64_t hash = fnv1a_fold_f64(kFnv1aInit, r.cost);
  hash = fnv1a_fold_f64(hash, r.tree_cost);
  hash = fnv1a_fold(hash, r.loaded_tree_edges);
  return CounterScenario{
      name,
      {{"tree_node_visits", r.counters.tree_node_visits},
       {"tree_lookups", r.counters.tree_lookups},
       {"lca_probes", r.counters.lca_probes},
       {"result_hash32", fold32(hash)}}};
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  scenarios.push_back(
      bab_scenario("bab_flat_grid_256", "grid", 256, 128, 4201, true));
  scenarios.push_back(
      bab_scenario("bab_tree_grid_256", "grid", 256, 128, 4201, false));
  scenarios.push_back(
      bab_scenario("bab_flat_geometric_256", "geometric", 256, 128, 4202,
                   true));
  scenarios.push_back(
      bab_scenario("bab_tree_geometric_256", "geometric", 256, 128, 4202,
                   false));
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header("E10: buy-at-bulk",
               "Theorem 10.2 — expected O(log n)-approximation via FRT "
               "routing + per-edge cable optimisation");
  Rng rng(cli.seed());
  const std::vector<CableType> cables{{1.0, 1.0}, {8.0, 4.0}, {64.0, 16.0}};
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{128}
                                        : std::vector<Vertex>{128, 256, 512};
  Table t({"family", "n", "demands", "FRT cost", "direct cost",
           "lower bound", "FRT/LB", "direct/LB", "tree cost",
           "loaded edges"});

  for (const auto* family : {"geometric", "grid"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      for (const std::size_t demand_count : {32U, 128U}) {
        std::vector<Demand> demands;
        while (demands.size() < demand_count) {
          const auto s = static_cast<Vertex>(rng.below(g.num_vertices()));
          const auto u = static_cast<Vertex>(rng.below(g.num_vertices()));
          if (s == u) continue;
          demands.push_back(Demand{s, u, std::floor(rng.uniform(1.0, 8.0))});
        }
        const auto r = buy_at_bulk(g, demands, cables, {}, rng);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   cell(demand_count), cell(r.cost), cell(r.direct_cost),
                   cell(r.lower_bound), cell(r.cost / r.lower_bound),
                   cell(r.direct_cost / r.lower_bound), cell(r.tree_cost),
                   cell(r.loaded_tree_edges)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
