// E10 — buy-at-bulk network design (Section 10, Theorem 10.2).
//
// Claim: routing on a sampled FRT tree and mapping back gives an expected
// O(log n)-approximation.  We report the tree-based cost against the
// fractional lower bound and the no-consolidation direct-routing baseline.

#include "bench/bench_common.hpp"
#include "src/apps/buyatbulk.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E10: buy-at-bulk",
               "Theorem 10.2 — expected O(log n)-approximation via FRT "
               "routing + per-edge cable optimisation");
  Rng rng(cli.seed());
  const std::vector<CableType> cables{{1.0, 1.0}, {8.0, 4.0}, {64.0, 16.0}};
  const std::vector<Vertex> sizes = quick(cli)
                                        ? std::vector<Vertex>{128}
                                        : std::vector<Vertex>{128, 256, 512};
  Table t({"family", "n", "demands", "FRT cost", "direct cost",
           "lower bound", "FRT/LB", "direct/LB", "tree cost",
           "loaded edges"});

  for (const auto* family : {"geometric", "grid"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      for (const std::size_t demand_count : {32U, 128U}) {
        std::vector<Demand> demands;
        while (demands.size() < demand_count) {
          const auto s = static_cast<Vertex>(rng.below(g.num_vertices()));
          const auto u = static_cast<Vertex>(rng.below(g.num_vertices()));
          if (s == u) continue;
          demands.push_back(Demand{s, u, std::floor(rng.uniform(1.0, 8.0))});
        }
        const auto r = buy_at_bulk(g, demands, cables, {}, rng);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   cell(demand_count), cell(r.cost), cell(r.direct_cost),
                   cell(r.lower_bound), cell(r.cost / r.lower_bound),
                   cell(r.direct_cost / r.lower_bound), cell(r.tree_cost),
                   cell(r.loaded_tree_edges)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
