// E7 — work/stretch trade-off via Baswana–Sen (Corollary 7.11).
//
// Claims: a (2k−1)-spanner has O(k·n^{1+1/k}) edges; running the tree
// embedding on the spanner reduces work at the price of an O(k) factor in
// expected stretch.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/spanner/baswana_sen.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E7: spanner trade-off",
               "Corollary 7.11 — (2k-1)-spanner preprocessing: size "
               "O(k n^(1+1/k)), embedding stretch grows by O(k)");
  Rng rng(cli.seed());
  // Dense enough that k ≥ 2 actually sparsifies: m ≫ n^{3/2}.
  const Vertex n = quick(cli) ? 128 : 256;
  const std::size_t m = static_cast<std::size_t>(n) * n / 6;
  const std::size_t trees = quick(cli) ? 6 : 12;
  const auto g = make_gnm(n, m, {1.0, 6.0}, rng);
  const auto pairs = sample_pairs(g, 24, 500, rng);

  Table t({"k", "spanner edges", "n^(1+1/k)", "spanner stretch bound",
           "avg E[stretch] of FRT", "work [ops]", "time [ms]"});
  // Baseline k=1: the graph itself.
  for (const unsigned k : {1U, 2U, 3U, 4U, 5U}) {
    auto sp = baswana_sen_spanner(g, k, rng);
    const WorkDepthScope scope;
    const Timer timer;
    std::vector<FrtTree> ts;
    for (std::size_t i = 0; i < trees; ++i) {
      ts.push_back(sample_frt_direct(sp.spanner, rng).tree);
    }
    const double ms = timer.millis();
    const auto rep = measure_stretch(pairs, ts);
    t.add_row({cell(std::size_t{k}), cell(sp.edges),
               cell(std::pow(static_cast<double>(n),
                             1.0 + 1.0 / static_cast<double>(k))),
               cell(std::size_t{2 * k - 1}), cell(rep.avg_expected_stretch),
               cell(static_cast<double>(scope.work_delta())), cell(ms)});
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
